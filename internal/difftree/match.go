package difftree

// Match attempts to derive the Binding under which the Difftree rooted at
// pattern expresses the concrete AST query (paper §3.2.4). It returns the
// binding and true on success. Match backtracks over ANY alternatives, OPT
// presence, MULTI repetition counts and SUBSET selections, so it is a
// decision procedure for "does this Difftree express this query?".
//
// pattern must have been Renumber()ed so choice-node IDs are unique.
func Match(pattern, query *Node) (Binding, bool) {
	return matchNode(pattern, query)
}

// merge copies both bindings into a fresh map. It is required where a source
// binding outlives the call and may be extended along several backtracking
// branches (matchSubset's accumulator); everywhere else the cheaper in-place
// put suffices.
func merge(dst, src Binding) Binding {
	out := make(Binding, len(dst)+len(src))
	for k, v := range dst {
		out[k] = v
	}
	for k, v := range src {
		out[k] = v
	}
	return out
}

// put moves src's entries into dst in place and returns dst. Only valid when
// dst is freshly built and uniquely owned by the caller (every binding
// returned by matchNode/matchSeq is); src is not retained.
func put(dst, src Binding) Binding {
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

func matchNode(p, q *Node) (Binding, bool) {
	if p == nil || q == nil {
		return nil, false
	}
	switch p.Kind {
	case KindAny:
		for i, c := range p.Children {
			if b, ok := matchNode(c, q); ok {
				b[p.ID] = BindValue{Index: i}
				return b, true
			}
		}
		return nil, false
	case KindOpt:
		if q.Kind == KindNone {
			return Binding{p.ID: BindValue{Present: false}}, true
		}
		if b, ok := matchNode(p.Children[0], q); ok {
			b[p.ID] = BindValue{Present: true}
			return b, true
		}
		return nil, false
	case KindVal:
		if !q.Kind.IsLiteral() {
			return nil, false
		}
		if p.Label == "num" && q.Kind != KindNumber {
			return nil, false
		}
		return Binding{p.ID: BindValue{Lit: q.Label, LitKind: q.Kind}}, true
	case KindMulti, KindSubset:
		// Only meaningful inside list nodes; a bare occurrence cannot match
		// a single fixed-arity slot.
		return nil, false
	}
	// Canonicalization bridge: a WHERE/HAVING pattern whose AND list can
	// resolve empty expresses the query with the clause missing entirely
	// (None), and a GROUP BY pattern expresses None via an empty list.
	if q.Kind == KindNone && q.Kind != p.Kind {
		switch p.Kind {
		case KindWhere, KindHaving:
			return matchNode(p.Children[0], &Node{Kind: KindAnd})
		case KindGroupBy, KindOrderBy:
			return matchSeq(p.Children, nil)
		}
		return nil, false
	}
	// Static node.
	if p.Kind != q.Kind || p.Label != q.Label {
		return nil, false
	}
	if p.Kind.IsList() {
		return matchSeq(p.Children, q.Children)
	}
	if len(p.Children) != len(q.Children) {
		return nil, false
	}
	b := Binding{}
	for i := range p.Children {
		cb, ok := matchNode(p.Children[i], q.Children[i])
		if !ok {
			return nil, false
		}
		b = put(b, cb)
	}
	return b, true
}

// matchSeq matches a pattern child sequence (which may contain MULTI,
// SUBSET, OPT and ANY nodes) against a concrete child sequence.
func matchSeq(pats, qs []*Node) (Binding, bool) {
	if len(pats) == 0 {
		if len(qs) == 0 {
			return Binding{}, true
		}
		return nil, false
	}
	p := pats[0]
	switch p.Kind {
	case KindMulti:
		pattern := p.Children[0]
		// Greedy: prefer consuming more repetitions, backtrack downwards.
		max := len(qs)
		for k := max; k >= 0; k-- {
			reps := make([]Binding, 0, k)
			ok := true
			for i := 0; i < k; i++ {
				sub, match := matchNode(pattern, qs[i])
				if !match {
					ok = false
					break
				}
				reps = append(reps, sub)
			}
			if !ok {
				continue
			}
			rest, match := matchSeq(pats[1:], qs[k:])
			if !match {
				continue
			}
			rest[p.ID] = BindValue{Reps: reps}
			return rest, true
		}
		return nil, false
	case KindSubset:
		return matchSubset(p, pats[1:], qs)
	case KindOpt:
		// Present: consume one item.
		if len(qs) > 0 {
			if cb, ok := matchNode(p.Children[0], qs[0]); ok {
				if rest, ok2 := matchSeq(pats[1:], qs[1:]); ok2 {
					b := put(cb, rest)
					b[p.ID] = BindValue{Present: true}
					return b, true
				}
			}
		}
		// Absent: consume nothing.
		if rest, ok := matchSeq(pats[1:], qs); ok {
			rest[p.ID] = BindValue{Present: false}
			return rest, true
		}
		return nil, false
	default:
		// ANY, VAL and static patterns consume exactly one item.
		if len(qs) == 0 {
			return nil, false
		}
		cb, ok := matchNode(p, qs[0])
		if !ok {
			return nil, false
		}
		rest, ok := matchSeq(pats[1:], qs[1:])
		if !ok {
			return nil, false
		}
		return put(cb, rest), true
	}
}

// matchSubset matches SUBSET(c1..ck) followed by the remaining patterns.
// It chooses an ascending subset of children matching a prefix of qs.
func matchSubset(sub *Node, restPats, qs []*Node) (Binding, bool) {
	var rec func(ci, qi int, chosen []int, acc Binding) (Binding, bool)
	rec = func(ci, qi int, chosen []int, acc Binding) (Binding, bool) {
		// Extend: match a further child against the next query item.
		if qi < len(qs) {
			for c := ci; c < len(sub.Children); c++ {
				cb, ok := matchNode(sub.Children[c], qs[qi])
				if !ok {
					continue
				}
				if r, ok := rec(c+1, qi+1, append(chosen[:len(chosen):len(chosen)], c), merge(acc, cb)); ok {
					return r, true
				}
			}
		}
		// Stop: the rest of the sequence must be matched by the remaining
		// patterns. rest is fresh, so it can absorb acc in place; acc itself
		// must stay untouched — the parent frame's loop may still extend it.
		rest, ok := matchSeq(restPats, qs[qi:])
		if !ok {
			return nil, false
		}
		b := put(rest, acc)
		idx := append([]int(nil), chosen...)
		b[sub.ID] = BindValue{Indices: idx}
		return b, true
	}
	return rec(0, 0, nil, Binding{})
}

// BindAll matches every query against the Difftree and returns the collected
// query bindings. ok is false if any query is not expressible, which callers
// treat as a broken transformation (the paper's rules guarantee
// expressiveness is preserved; this re-verification enforces it).
func BindAll(tree *Node, queries []*Node) (*QueryBindings, bool) {
	per := make([]Binding, len(queries))
	for i, q := range queries {
		b, ok := Match(tree, q)
		if !ok {
			return nil, false
		}
		per[i] = b
	}
	return CollectQueryBindings(per), true
}
