package difftree

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func predEq(col, lit string) *Node {
	return New(KindBinary, "=", Ident(col), Number(lit))
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	n := New(KindAnd, "", predEq("a", "1"), predEq("b", "2"))
	c := n.Clone()
	if !Equal(n, c) {
		t.Fatalf("clone not equal: %v vs %v", n, c)
	}
	c.Children[0].Children[1].Label = "99"
	if Equal(n, c) {
		t.Fatal("mutating clone affected original (shallow copy?)")
	}
}

func TestEqualDistinguishesKindLabelShape(t *testing.T) {
	a := predEq("a", "1")
	cases := []*Node{
		predEq("a", "2"),
		predEq("b", "1"),
		New(KindBinary, "<", Ident("a"), Number("1")),
		New(KindBinary, "=", Ident("a")),
	}
	for i, b := range cases {
		if Equal(a, b) {
			t.Errorf("case %d: expected inequality between %v and %v", i, a, b)
		}
	}
	if !Equal(a, predEq("a", "1")) {
		t.Error("identical trees compare unequal")
	}
}

func TestRenumberAssignsPreorderIDs(t *testing.T) {
	n := New(KindAnd, "", predEq("a", "1"), predEq("b", "2"))
	total := n.Renumber()
	if total != 7 {
		t.Fatalf("expected 7 nodes, got %d", total)
	}
	want := []int{0, 1, 2, 3, 4, 5, 6}
	var got []int
	n.Walk(func(m *Node) bool { got = append(got, m.ID); return true })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ids = %v, want %v", got, want)
	}
}

func TestWalkPrune(t *testing.T) {
	n := New(KindAnd, "", predEq("a", "1"), predEq("b", "2"))
	count := 0
	n.Walk(func(m *Node) bool {
		count++
		return m.Kind != KindBinary // prune below comparisons
	})
	if count != 3 { // and + 2 binaries
		t.Fatalf("visited %d nodes, want 3", count)
	}
}

func TestChoiceNodesAndHasChoice(t *testing.T) {
	static := predEq("a", "1")
	if static.HasChoice() {
		t.Error("static tree reports choice nodes")
	}
	choice := New(KindAny, "", predEq("a", "1"), predEq("b", "2"))
	tree := New(KindWhere, "", choice)
	tree.Renumber()
	if !tree.HasChoice() {
		t.Error("tree with ANY reports no choice")
	}
	cs := tree.ChoiceNodes()
	if len(cs) != 1 || cs[0].Kind != KindAny {
		t.Fatalf("ChoiceNodes = %v", cs)
	}
}

func TestParentOfAndFind(t *testing.T) {
	left := predEq("a", "1")
	n := New(KindAnd, "", left, predEq("b", "2"))
	n.Renumber()
	if p := n.ParentOf(left); p != n {
		t.Fatalf("ParentOf(left) = %v, want root", p)
	}
	if p := n.ParentOf(n); p != nil {
		t.Fatalf("ParentOf(root) = %v, want nil", p)
	}
	if f := n.Find(left.ID); f != left {
		t.Fatalf("Find(%d) = %v, want left child", left.ID, f)
	}
	if f := n.Find(9999); f != nil {
		t.Fatalf("Find(9999) = %v, want nil", f)
	}
}

// genTree builds a random tree for property tests.
func genTree(r *rand.Rand, depth int) *Node {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return Ident(string(rune('a' + r.Intn(26))))
		case 1:
			return Number(string(rune('0' + r.Intn(10))))
		default:
			return Str("s" + string(rune('a'+r.Intn(26))))
		}
	}
	kinds := []Kind{KindAnd, KindBinary, KindFunc, KindExprList}
	k := kinds[r.Intn(len(kinds))]
	n := New(k, "")
	if k == KindBinary {
		n.Label = "="
		n.Children = []*Node{genTree(r, depth-1), genTree(r, depth-1)}
		return n
	}
	if k == KindFunc {
		n.Label = "f"
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		n.Children = append(n.Children, genTree(r, depth-1))
	}
	return n
}

// Property: Clone always produces an Equal tree with an equal Hash.
func TestQuickCloneEqualHash(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genTree(r, 4)
		c := n.Clone()
		return Equal(n, c) && Hash(n) == Hash(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: structurally different trees produced by a label mutation hash
// differently (FNV collisions at this scale would indicate a hashing bug).
func TestQuickHashSensitivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := genTree(r, 4)
		c := n.Clone()
		// mutate a random leaf label
		var leaves []*Node
		c.Walk(func(m *Node) bool {
			if len(m.Children) == 0 {
				leaves = append(leaves, m)
			}
			return true
		})
		leaf := leaves[r.Intn(len(leaves))]
		leaf.Label += "_x"
		return !Equal(n, c) && Hash(n) != Hash(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRootKey(t *testing.T) {
	if RootKey(predEq("a", "1")) != "binary:=" {
		t.Errorf("RootKey binary = %q", RootKey(predEq("a", "1")))
	}
	lt := New(KindBinary, "<", Ident("a"), Number("1"))
	if RootKey(predEq("a", "1")) == RootKey(lt) {
		t.Error("different operators share a root key")
	}
	if RootKey(Ident("a")) != RootKey(Ident("b")) {
		t.Error("identifiers should share a root key regardless of label")
	}
}

func TestStringSExpr(t *testing.T) {
	got := predEq("a", "1").String()
	want := "(binary = (ident a) (number 1))"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
