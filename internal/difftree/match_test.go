package difftree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildAnyPredTree builds ANY(a=1, b=2) as in paper Figure 3(a).
func buildAnyPredTree() *Node {
	tree := New(KindAny, "", predEq("a", "1"), predEq("b", "2"))
	tree.Renumber()
	return tree
}

func TestMatchANYChoosesChild(t *testing.T) {
	tree := buildAnyPredTree()
	b, ok := Match(tree, predEq("b", "2"))
	if !ok {
		t.Fatal("expected match")
	}
	if b[tree.ID].Index != 1 {
		t.Fatalf("bound index = %d, want 1", b[tree.ID].Index)
	}
	if _, ok := Match(tree, predEq("c", "3")); ok {
		t.Fatal("matched a predicate outside the ANY children")
	}
}

func TestMatchResolveRoundTripANY(t *testing.T) {
	tree := buildAnyPredTree()
	for _, q := range []*Node{predEq("a", "1"), predEq("b", "2")} {
		b, ok := Match(tree, q)
		if !ok {
			t.Fatalf("no match for %v", q)
		}
		got, err := Resolve(tree, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, q) {
			t.Fatalf("resolve(match(q)) = %v, want %v", got, q)
		}
	}
}

func TestMatchVAL(t *testing.T) {
	// VAL<num> generalizing ANY(1,2) as in Figure 3(c).
	val := New(KindVal, "num", Number("1"), Number("2"))
	tree := New(KindBinary, "=", Ident("a"), val)
	tree.Renumber()

	b, ok := Match(tree, predEq("a", "5"))
	if !ok {
		t.Fatal("VAL should match any numeric literal")
	}
	if b[val.ID].Lit != "5" {
		t.Fatalf("VAL bound to %q, want 5", b[val.ID].Lit)
	}
	// VAL<num> must not match a string literal.
	qs := New(KindBinary, "=", Ident("a"), Str("x"))
	if _, ok := Match(tree, qs); ok {
		t.Fatal("VAL<num> matched a string literal")
	}
	got, err := Resolve(tree, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, predEq("a", "5")) {
		t.Fatalf("resolved %v", got)
	}
}

func TestMatchOPTFixedSlot(t *testing.T) {
	// query node with OPT(where) at the where slot
	mkQuery := func(where *Node) *Node {
		return New(KindQuery, "",
			New(KindSelectList, "", New(KindSelectItem, "", Ident("a"), NewNone())),
			New(KindFrom, "", New(KindTableRef, "", Ident("T"), NewNone())),
			where, NewNone(), NewNone(), NewNone(), NewNone())
	}
	opt := New(KindOpt, "", New(KindWhere, "", predEq("a", "1")))
	tree := mkQuery(opt)
	tree.Renumber()

	withWhere := mkQuery(New(KindWhere, "", predEq("a", "1")))
	b, ok := Match(tree, withWhere)
	if !ok || !b[opt.ID].Present {
		t.Fatalf("expected present OPT, binding=%v ok=%v", b, ok)
	}
	noWhere := mkQuery(NewNone())
	b, ok = Match(tree, noWhere)
	if !ok || b[opt.ID].Present {
		t.Fatalf("expected absent OPT, binding=%v ok=%v", b, ok)
	}
	for _, q := range []*Node{withWhere, noWhere} {
		b, _ := Match(tree, q)
		got, err := Resolve(tree, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, q) {
			t.Fatalf("round trip failed: %v vs %v", got, q)
		}
	}
}

func TestMatchMULTIRepetitions(t *testing.T) {
	// MULTI(ANY(a,b)) inside a select list matches "a,a" and "b" (paper Ex. 4).
	anyN := New(KindAny, "", Ident("a"), Ident("b"))
	multi := New(KindMulti, "", anyN)
	tree := New(KindExprList, "", multi)
	tree.Renumber()

	q1 := New(KindExprList, "", Ident("a"), Ident("a"))
	b, ok := Match(tree, q1)
	if !ok {
		t.Fatal("MULTI failed to match [a,a]")
	}
	if len(b[multi.ID].Reps) != 2 {
		t.Fatalf("reps = %d, want 2", len(b[multi.ID].Reps))
	}
	for _, rep := range b[multi.ID].Reps {
		if rep[anyN.ID].Index != 0 {
			t.Fatalf("inner ANY index = %d, want 0", rep[anyN.ID].Index)
		}
	}
	q2 := New(KindExprList, "", Ident("b"))
	if _, ok := Match(tree, q2); !ok {
		t.Fatal("MULTI failed to match [b]")
	}
	// mixed
	q3 := New(KindExprList, "", Ident("b"), Ident("a"))
	b, ok = Match(tree, q3)
	if !ok {
		t.Fatal("MULTI failed to match [b,a]")
	}
	got, err := Resolve(tree, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, q3) {
		t.Fatalf("round trip = %v, want %v", got, q3)
	}
	// an item outside the pattern must fail
	q4 := New(KindExprList, "", Ident("c"))
	if _, ok := Match(tree, q4); ok {
		t.Fatal("MULTI matched an item outside its pattern")
	}
}

func TestMatchSUBSET(t *testing.T) {
	sub := New(KindSubset, "", predEq("a", "1"), predEq("b", "2"), predEq("c", "3"))
	tree := New(KindAnd, "", sub)
	tree.Renumber()

	q := New(KindAnd, "", predEq("a", "1"), predEq("c", "3"))
	b, ok := Match(tree, q)
	if !ok {
		t.Fatal("SUBSET failed to match ordered subset")
	}
	got := b[sub.ID].Indices
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("indices = %v, want [0 2]", got)
	}
	r, err := Resolve(tree, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(r, q) {
		t.Fatalf("round trip = %v, want %v", r, q)
	}
	// out-of-order subsets are not expressible (SUBSET keeps child order)
	qr := New(KindAnd, "", predEq("c", "3"), predEq("a", "1"))
	if _, ok := Match(tree, qr); ok {
		t.Fatal("SUBSET matched out-of-order children")
	}
	// empty subset
	q0 := New(KindAnd, "")
	if b, ok := Match(tree, q0); !ok || len(b[sub.ID].Indices) != 0 {
		t.Fatalf("empty subset: ok=%v b=%v", ok, b)
	}
}

func TestMatchOPTInList(t *testing.T) {
	opt := New(KindOpt, "", predEq("b", "2"))
	tree := New(KindAnd, "", predEq("a", "1"), opt)
	tree.Renumber()

	full := New(KindAnd, "", predEq("a", "1"), predEq("b", "2"))
	b, ok := Match(tree, full)
	if !ok || !b[opt.ID].Present {
		t.Fatalf("want present, got ok=%v b=%v", ok, b)
	}
	short := New(KindAnd, "", predEq("a", "1"))
	b, ok = Match(tree, short)
	if !ok || b[opt.ID].Present {
		t.Fatalf("want absent, got ok=%v b=%v", ok, b)
	}
}

func TestBindAllRejectsUnexpressible(t *testing.T) {
	tree := buildAnyPredTree()
	qs := []*Node{predEq("a", "1"), predEq("z", "9")}
	if _, ok := BindAll(tree, qs); ok {
		t.Fatal("BindAll accepted an unexpressible query")
	}
	qb, ok := BindAll(tree, []*Node{predEq("a", "1"), predEq("b", "2")})
	if !ok {
		t.Fatal("BindAll rejected expressible queries")
	}
	vals := qb.ValuesFor(tree.ID)
	if len(vals) != 2 {
		t.Fatalf("distinct ANY bindings = %d, want 2", len(vals))
	}
}

// Property: for a random ANY-of-predicates tree, every child is expressible
// and resolves back to itself (paper's expressiveness guarantee at the
// smallest scale).
func TestQuickMatchResolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		var kids []*Node
		for i := 0; i < k; i++ {
			kids = append(kids, predEq(
				string(rune('a'+r.Intn(5))),
				string(rune('0'+r.Intn(10)))))
		}
		tree := New(KindAny, "", kids...)
		tree.Renumber()
		for _, q := range kids {
			b, ok := Match(tree, q)
			if !ok {
				return false
			}
			got, err := Resolve(tree, b)
			if err != nil || !Equal(got, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: MULTI over a VAL pattern expresses arbitrary literal lists.
func TestQuickMultiValRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		val := New(KindVal, "num", Number("1"))
		multi := New(KindMulti, "", val)
		tree := New(KindExprList, "", multi)
		tree.Renumber()
		n := r.Intn(5)
		q := New(KindExprList, "")
		for i := 0; i < n; i++ {
			q.Children = append(q.Children, Number(string(rune('0'+r.Intn(10)))))
		}
		b, ok := Match(tree, q)
		if !ok {
			return false
		}
		got, err := Resolve(tree, b)
		return err == nil && Equal(got, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBindingCloneIndependence(t *testing.T) {
	b := Binding{
		1: {Index: 2},
		2: {Reps: []Binding{{3: {Lit: "7", LitKind: KindNumber}}}},
		4: {Indices: []int{0, 1}},
	}
	c := b.Clone()
	c[2].Reps[0][3] = BindValue{Lit: "9", LitKind: KindNumber}
	c[4].Indices[0] = 5
	if b[2].Reps[0][3].Lit != "7" {
		t.Error("clone shares nested rep bindings")
	}
	if b[4].Indices[0] != 0 {
		t.Error("clone shares index slices")
	}
}

func TestBindValueKeyDistinguishes(t *testing.T) {
	a := BindValue{Index: 1}
	b := BindValue{Index: 2}
	if a.Key() == b.Key() {
		t.Error("different ANY indices share a key")
	}
	v1 := BindValue{Lit: "1", LitKind: KindNumber}
	v2 := BindValue{Lit: "1", LitKind: KindString}
	if v1.Key() == v2.Key() {
		t.Error("num and str literals share a key")
	}
}
