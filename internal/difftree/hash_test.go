package difftree

import "testing"

// Binding-state hashes must be canonical: hashing KeyString gives the same
// value for the same logical state regardless of map construction order —
// the property the interaction result cache keys on.
func TestHashKeyOverBindingsCanonical(t *testing.T) {
	a := Binding{
		3: {Lit: "50", LitKind: KindNumber},
		7: {Index: 1},
		9: {Present: true},
	}
	b := Binding{}
	b[9] = BindValue{Present: true}
	b[3] = BindValue{Lit: "50", LitKind: KindNumber}
	b[7] = BindValue{Index: 1}
	if HashKey(a.KeyString()) != HashKey(b.KeyString()) {
		t.Fatal("equal bindings hash differently")
	}
	c := a.Clone()
	c[3] = BindValue{Lit: "51", LitKind: KindNumber}
	if HashKey(a.KeyString()) == HashKey(c.KeyString()) {
		t.Fatal("distinct bindings collided on a trivial change")
	}
}
