package difftree

import (
	"fmt"
	"sort"
	"strings"
)

// BindValue parameterizes a single choice node (paper §3.1):
//
//	ANY    — Index selects the child subtree.
//	OPT    — Present reports whether the child exists.
//	VAL    — Lit is the literal text, LitKind its literal kind.
//	MULTI  — Reps holds one nested Binding per repetition of the child
//	         pattern (covering the choice nodes inside the pattern).
//	SUBSET — Indices lists the chosen children in ascending order.
type BindValue struct {
	Index   int
	Present bool
	Lit     string
	LitKind Kind
	Reps    []Binding
	Indices []int
}

// Binding maps choice-node IDs to their parameterization. Choice nodes
// nested under a MULTI are bound inside the MULTI's per-repetition Bindings
// rather than at top level, because each repetition re-instantiates them.
type Binding map[int]BindValue

// Clone deep-copies a binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v.clone()
	}
	return out
}

// Clone deep-copies a bind value.
func (v BindValue) Clone() BindValue { return v.clone() }

func (v BindValue) clone() BindValue {
	c := v
	if v.Reps != nil {
		c.Reps = make([]Binding, len(v.Reps))
		for i, r := range v.Reps {
			c.Reps[i] = r.Clone()
		}
	}
	if v.Indices != nil {
		c.Indices = append([]int(nil), v.Indices...)
	}
	return c
}

// Key renders a canonical string for the bind value, used to union bindings
// per node and to compare the values a widget or interaction must express.
func (v BindValue) Key() string {
	var b strings.Builder
	v.key(&b)
	return b.String()
}

func (v BindValue) key(b *strings.Builder) {
	switch {
	case v.Reps != nil:
		b.WriteByte('[')
		for i, r := range v.Reps {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(r.KeyString())
		}
		b.WriteByte(']')
	case v.Indices != nil:
		b.WriteByte('{')
		for i, ix := range v.Indices {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%d", ix)
		}
		b.WriteByte('}')
	case v.Lit != "" || v.LitKind != KindInvalid:
		// The literal is length-prefixed so user-controlled text (textbox
		// bindings) cannot forge the key's structural separators and make
		// two distinct binding states render the same canonical key — the
		// interaction result cache compares these keys for exact equality.
		fmt.Fprintf(b, "%s:%d:%s", v.LitKind, len(v.Lit), v.Lit)
	default:
		fmt.Fprintf(b, "i%d/%t", v.Index, v.Present)
	}
}

// KeyString renders a canonical string for an entire binding.
func (b Binding) KeyString() string {
	ids := make([]int, 0, len(b))
	for id := range b {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(';')
		}
		fmt.Fprintf(&sb, "%d=", id)
		v := b[id]
		v.key(&sb)
	}
	return sb.String()
}

// QueryBindings records, for each choice node (by ID), the set of distinct
// bind values needed to express the input queries (paper §3.2.4). Values is
// keyed by BindValue.Key for deduplication.
type QueryBindings struct {
	PerQuery []Binding                       // binding of each input query, in order
	Values   map[int]map[string]BindValue    // choice node ID -> distinct values
	Queries  map[int]map[string]map[int]bool // node ID -> value key -> query indices using it
}

// CollectQueryBindings unions per-query bindings into per-node value sets.
func CollectQueryBindings(perQuery []Binding) *QueryBindings {
	qb := &QueryBindings{
		PerQuery: perQuery,
		Values:   map[int]map[string]BindValue{},
		Queries:  map[int]map[string]map[int]bool{},
	}
	for qi, b := range perQuery {
		qb.addBinding(qi, b)
	}
	return qb
}

func (qb *QueryBindings) addBinding(qi int, b Binding) {
	for id, v := range b {
		k := v.Key()
		if qb.Values[id] == nil {
			qb.Values[id] = map[string]BindValue{}
			qb.Queries[id] = map[string]map[int]bool{}
		}
		qb.Values[id][k] = v
		if qb.Queries[id][k] == nil {
			qb.Queries[id][k] = map[int]bool{}
		}
		qb.Queries[id][k][qi] = true
		// MULTI repetitions carry nested bindings for inner choice nodes.
		for _, rep := range v.Reps {
			qb.addBinding(qi, rep)
		}
	}
}

// ValuesFor returns the distinct bind values recorded for a choice node.
func (qb *QueryBindings) ValuesFor(id int) []BindValue {
	m := qb.Values[id]
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]BindValue, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
