package sqlparser_test

// Native Go fuzz targets for the SQL parser. Under `go test` only the seed
// corpus runs (fast, CI-safe); `go test -fuzz FuzzParse ./internal/sqlparser`
// explores further.

import (
	"testing"

	dt "pi2/internal/difftree"
	"pi2/internal/sqlparser"
	"pi2/internal/workload"
)

// seedQueries feeds every workload query plus a handful of syntax edge
// cases into the corpus.
func seedQueries(f *testing.F) {
	f.Helper()
	for _, log := range workload.All() {
		for _, q := range log.Queries {
			f.Add(q)
		}
	}
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT * FROM t WHERE",
		"SELECT a, b FROM t WHERE a = 'it''s' AND b LIKE '%x_'",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 1 ORDER BY a DESC LIMIT 5",
		"SELECT -1.5e3, (SELECT max(x) FROM u) FROM t",
		"SELECT a FROM (SELECT a FROM t) sub WHERE a IN (1, 2, 3)",
		"SELECT a FROM t WHERE NOT (a BETWEEN 1 AND 2 OR a <> 3)",
		"select distinct t.a from t, u where t.a = u.a",
		"SELECT ((((1))))",
		"SELECT 'unterminated",
		"SELECT a FROM t LIMIT abc",
		"SELECT * FROM t JOIN u ON t.a = u.a",
		"SELECT * FROM t INNER JOIN u ON t.a = u.a AND u.b > 3",
		"SELECT t.a, u.b FROM t LEFT JOIN u ON t.a = u.a WHERE u.b <> 4",
		"SELECT t.a FROM t LEFT OUTER JOIN u ON t.a = u.a OR t.b < u.b",
		"select e.id, d.city from emp e right join dept d on e.dept = d.name order by e.id",
		"SELECT * FROM a, b FULL OUTER JOIN c ON b.x = c.x LEFT JOIN d ON c.y = d.y, e",
		"SELECT * FROM t FULL JOIN (SELECT a FROM u) sub ON t.a = sub.a LIMIT 2",
		"SELECT * FROM t LEFT JOIN u ON 1 = 1",
		"SELECT * FROM t JOIN u", // missing ON: must error, not panic
		"SELECT * FROM t LEFT u ON t.a = u.a",
	} {
		f.Add(q)
	}
}

// FuzzParse asserts the parser never panics: any input either parses or
// returns an error.
func FuzzParse(f *testing.F) {
	seedQueries(f)
	f.Fuzz(func(t *testing.T, sql string) {
		ast, err := sqlparser.Parse(sql)
		if err == nil && ast == nil {
			t.Fatalf("Parse(%q) returned nil AST without error", sql)
		}
	})
}

// FuzzRoundTrip asserts that rendering a parsed query and re-parsing it
// reproduces a structurally equal AST: ToSQL is a faithful inverse of Parse
// on the parseable subset of inputs.
func FuzzRoundTrip(f *testing.F) {
	seedQueries(f)
	f.Fuzz(func(t *testing.T, sql string) {
		ast, err := sqlparser.Parse(sql)
		if err != nil {
			t.Skip()
		}
		rendered := sqlparser.ToSQL(ast)
		ast2, err := sqlparser.Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered SQL failed:\n  input:    %q\n  rendered: %q\n  error:    %v", sql, rendered, err)
		}
		if !dt.Equal(ast, ast2) {
			t.Fatalf("round-trip not structurally equal:\n  input:    %q\n  rendered: %q\n  ast:      %s\n  re-ast:   %s",
				sql, rendered, ast, ast2)
		}
	})
}
