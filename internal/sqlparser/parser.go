package sqlparser

import (
	"fmt"

	dt "pi2/internal/difftree"
)

// Parse parses a single SQL query into a difftree AST. The returned tree is
// renumbered and contains no choice nodes (a "static" Difftree, paper §2).
func Parse(sql string) (*dt.Node, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input starting at %q", p.cur().text)
	}
	q.Renumber()
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and embedded
// workload definitions that are known-good.
func MustParse(sql string) *dt.Node {
	q, err := Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("sqlparser.MustParse(%q): %v", sql, err))
	}
	return q
}

// ParseAll parses a sequence of queries.
func ParseAll(sqls []string) ([]*dt.Node, error) {
	out := make([]*dt.Node, len(sqls))
	for i, s := range sqls {
		q, err := Parse(s)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i+1, err)
		}
		out[i] = q
	}
	return out, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token { return p.toks[p.pos] }

// next consumes and returns the current token; the trailing EOF token is
// never consumed, so cur() stays in range after any number of calls.
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokenKind, text string) bool {
	t := p.cur()
	return t.kind == k && (text == "" || t.text == text)
}

func (p *parser) accept(k tokenKind, text string) bool {
	if p.at(k, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(k tokenKind, text string) (token, error) {
	if p.at(k, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparser: offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// parseQuery parses SELECT ... [FROM ...] [WHERE ...] [GROUP BY ...]
// [HAVING ...] [ORDER BY ...] [LIMIT n]. The Query node always has seven
// children; missing clauses are KindNone.
func (p *parser) parseQuery() (*dt.Node, error) {
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	sel := dt.New(dt.KindSelectList, "")
	if p.accept(tokKeyword, "distinct") {
		sel.Label = "distinct"
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Children = append(sel.Children, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	from := dt.NewNone()
	if p.accept(tokKeyword, "from") {
		from = dt.New(dt.KindFrom, "")
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			from.Children = append(from.Children, ref)
			for {
				join, err := p.parseJoin()
				if err != nil {
					return nil, err
				}
				if join == nil {
					break
				}
				from.Children = append(from.Children, join)
			}
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	where := dt.NewNone()
	if p.accept(tokKeyword, "where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		where = dt.New(dt.KindWhere, "", andWrap(e))
	}

	groupby := dt.NewNone()
	if p.accept(tokKeyword, "group") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		groupby = dt.New(dt.KindGroupBy, "")
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupby.Children = append(groupby.Children, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	having := dt.NewNone()
	if p.accept(tokKeyword, "having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		having = dt.New(dt.KindHaving, "", andWrap(e))
	}

	orderby := dt.NewNone()
	if p.accept(tokKeyword, "order") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		orderby = dt.New(dt.KindOrderBy, "")
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			dir := "asc"
			if p.accept(tokKeyword, "desc") {
				dir = "desc"
			} else {
				p.accept(tokKeyword, "asc")
			}
			orderby.Children = append(orderby.Children, dt.New(dt.KindOrderItem, dir, e))
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}

	limit := dt.NewNone()
	if p.accept(tokKeyword, "limit") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		limit = dt.New(dt.KindLimit, t.text)
	}

	return dt.New(dt.KindQuery, "", sel, from, where, groupby, having, orderby, limit), nil
}

func (p *parser) parseSelectItem() (*dt.Node, error) {
	if p.accept(tokSymbol, "*") {
		return dt.New(dt.KindSelectItem, "", dt.New(dt.KindStar, ""), dt.NewNone()), nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	alias := dt.NewNone()
	if p.accept(tokKeyword, "as") {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected alias identifier, found %q", t.text)
		}
		alias = dt.Ident(t.text)
	} else if p.at(tokIdent, "") {
		// implicit alias: SELECT a b
		alias = dt.Ident(p.next().text)
	}
	return dt.New(dt.KindSelectItem, "", e, alias), nil
}

func (p *parser) parseTableRef() (*dt.Node, error) {
	var src *dt.Node
	if p.accept(tokSymbol, "(") {
		q, err := p.parseQuery()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		src = q
	} else {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected table name, found %q", t.text)
		}
		src = dt.Ident(t.text)
	}
	alias := dt.NewNone()
	if p.accept(tokKeyword, "as") {
		t := p.next()
		if t.kind != tokIdent {
			return nil, p.errf("expected alias identifier, found %q", t.text)
		}
		alias = dt.Ident(t.text)
	} else if p.at(tokIdent, "") {
		alias = dt.Ident(p.next().text)
	}
	return dt.New(dt.KindTableRef, "", src, alias), nil
}

// parseJoin parses one `[INNER|LEFT|RIGHT|FULL [OUTER]] JOIN ref ON expr`
// step, or returns (nil, nil) when the cursor is not at a join. The join
// type is the node label; bare JOIN is canonicalized to "inner" and the
// optional OUTER keyword is dropped, so equivalent spellings produce
// structurally equal trees. The ON expression is AND-wrapped like WHERE and
// HAVING bodies.
func (p *parser) parseJoin() (*dt.Node, error) {
	jt := ""
	switch {
	case p.at(tokKeyword, "join"):
		jt = "inner"
	case p.accept(tokKeyword, "inner"):
		jt = "inner"
	case p.accept(tokKeyword, "left"):
		jt = "left"
	case p.accept(tokKeyword, "right"):
		jt = "right"
	case p.accept(tokKeyword, "full"):
		jt = "full"
	default:
		return nil, nil
	}
	if jt != "inner" || !p.at(tokKeyword, "join") {
		p.accept(tokKeyword, "outer")
	}
	if _, err := p.expect(tokKeyword, "join"); err != nil {
		return nil, err
	}
	ref, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "on"); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return dt.New(dt.KindJoin, jt, ref, andWrap(e)), nil
}

// Expression grammar: Or > And > Not > Comparison > Add > Mul > Unary > Primary.

func (p *parser) parseExpr() (*dt.Node, error) { return p.parseOr() }

func (p *parser) parseOr() (*dt.Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	if !p.at(tokKeyword, "or") {
		return first, nil
	}
	or := dt.New(dt.KindOr, "", first)
	for p.accept(tokKeyword, "or") {
		e, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		or.Children = append(or.Children, e)
	}
	return or, nil
}

func (p *parser) parseAnd() (*dt.Node, error) {
	first, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	if !p.at(tokKeyword, "and") {
		return first, nil
	}
	and := dt.New(dt.KindAnd, "", first)
	for p.accept(tokKeyword, "and") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		and.Children = append(and.Children, e)
	}
	return and, nil
}

func (p *parser) parseNot() (*dt.Node, error) {
	if p.accept(tokKeyword, "not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return dt.New(dt.KindNot, "", e), nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (*dt.Node, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// comparison operators
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return dt.New(dt.KindBinary, op, left, right), nil
		}
	}
	negate := false
	if p.at(tokKeyword, "not") && p.toks[p.pos+1].kind == tokKeyword &&
		(p.toks[p.pos+1].text == "in" || p.toks[p.pos+1].text == "between" || p.toks[p.pos+1].text == "like") {
		p.next()
		negate = true
	}
	switch {
	case p.accept(tokKeyword, "between"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		node := dt.New(dt.KindBetween, "", left, lo, hi)
		if negate {
			return dt.New(dt.KindNot, "", node), nil
		}
		return node, nil
	case p.accept(tokKeyword, "in"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		label := "in"
		if negate {
			label = "not in"
		}
		if p.at(tokKeyword, "select") {
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return dt.New(dt.KindIn, label, left, q), nil
		}
		list := dt.New(dt.KindExprList, "")
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list.Children = append(list.Children, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return dt.New(dt.KindIn, label, left, list), nil
	case p.accept(tokKeyword, "like"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		node := dt.New(dt.KindBinary, "like", left, pat)
		if negate {
			return dt.New(dt.KindNot, "", node), nil
		}
		return node, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	return left, nil
}

func (p *parser) parseAdd() (*dt.Node, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "+"):
			op = "+"
		case p.accept(tokSymbol, "-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = dt.New(dt.KindBinary, op, left, right)
	}
}

func (p *parser) parseMul() (*dt.Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokSymbol, "*"):
			op = "*"
		case p.accept(tokSymbol, "/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = dt.New(dt.KindBinary, op, left, right)
	}
}

func (p *parser) parseUnary() (*dt.Node, error) {
	if p.accept(tokSymbol, "-") {
		// fold negation into numeric literals for cleaner trees
		if p.at(tokNumber, "") {
			t := p.next()
			return dt.Number("-" + t.text), nil
		}
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return dt.New(dt.KindBinary, "-", dt.Number("0"), e), nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (*dt.Node, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		return dt.Number(t.text), nil
	case tokString:
		p.next()
		return dt.Str(t.text), nil
	case tokIdent:
		p.next()
		name := t.text
		if p.accept(tokSymbol, ".") {
			ft := p.next()
			if ft.kind != tokIdent && ft.kind != tokKeyword {
				return nil, p.errf("expected identifier after '.', found %q", ft.text)
			}
			name = name + "." + ft.text
		}
		if p.accept(tokSymbol, "(") {
			fn := dt.New(dt.KindFunc, lowerASCII(name))
			if p.accept(tokSymbol, "*") {
				fn.Children = append(fn.Children, dt.New(dt.KindStar, ""))
			} else if !p.at(tokSymbol, ")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Children = append(fn.Children, e)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		return dt.Ident(name), nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			if p.at(tokKeyword, "select") {
				q, err := p.parseQuery()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tokSymbol, ")"); err != nil {
					return nil, err
				}
				return q, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// andWrap canonicalizes WHERE/HAVING expressions as AND lists, even for a
// single conjunct. Canonical conjunct lists let the PushANY/PushOPT
// transformation rules align predicates from queries with different
// conjunct counts; difftree.Resolve removes clauses whose AND list resolves
// empty, and Match treats a missing clause as an empty AND list.
func andWrap(e *dt.Node) *dt.Node {
	if e.Kind == dt.KindAnd {
		return e
	}
	return dt.New(dt.KindAnd, "", e)
}

func lowerASCII(s string) string {
	b := []byte(s)
	for i := range b {
		if 'A' <= b[i] && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
