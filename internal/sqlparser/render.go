package sqlparser

import (
	"strings"

	dt "pi2/internal/difftree"
)

// ToSQL renders a tree back to SQL text. Concrete ASTs round-trip through
// Parse/ToSQL. Choice nodes are rendered in a readable pseudo-syntax
// (ANY{a | b}, VAL<num>, ...) so the function is also usable for widget
// option labels and debugging output.
func ToSQL(n *dt.Node) string {
	var b strings.Builder
	render(&b, n)
	return b.String()
}

func render(b *strings.Builder, n *dt.Node) {
	if n == nil {
		return
	}
	switch n.Kind {
	case dt.KindQuery:
		renderQuery(b, n)
	case dt.KindSelectList:
		b.WriteString("SELECT ")
		if n.Label == "distinct" {
			b.WriteString("DISTINCT ")
		}
		renderList(b, n.Children, ", ")
	case dt.KindSelectItem:
		renderExpr(b, n.Children[0])
		if len(n.Children) > 1 && n.Children[1].Kind != dt.KindNone {
			b.WriteString(" AS ")
			render(b, n.Children[1])
		}
	case dt.KindStar:
		b.WriteByte('*')
	case dt.KindFrom:
		b.WriteString("FROM ")
		renderFrom(b, n.Children)
	case dt.KindJoin:
		b.WriteString(strings.ToUpper(n.Label))
		b.WriteString(" JOIN ")
		render(b, n.Children[0])
		b.WriteString(" ON ")
		renderExpr(b, n.Children[1])
	case dt.KindTableRef:
		if n.Children[0].Kind == dt.KindQuery {
			b.WriteByte('(')
			render(b, n.Children[0])
			b.WriteByte(')')
		} else {
			render(b, n.Children[0])
		}
		if len(n.Children) > 1 && n.Children[1].Kind != dt.KindNone {
			b.WriteString(" AS ")
			render(b, n.Children[1])
		}
	case dt.KindWhere:
		b.WriteString("WHERE ")
		renderExpr(b, n.Children[0])
	case dt.KindGroupBy:
		b.WriteString("GROUP BY ")
		renderExprList(b, n.Children, ", ")
	case dt.KindHaving:
		b.WriteString("HAVING ")
		renderExpr(b, n.Children[0])
	case dt.KindOrderBy:
		b.WriteString("ORDER BY ")
		renderList(b, n.Children, ", ")
	case dt.KindOrderItem:
		renderExpr(b, n.Children[0])
		if n.Label == "desc" {
			b.WriteString(" DESC")
		}
	case dt.KindLimit:
		b.WriteString("LIMIT ")
		b.WriteString(n.Label)
	case dt.KindAnd:
		renderBool(b, n.Children, " AND ")
	case dt.KindOr:
		renderBool(b, n.Children, " OR ")
	case dt.KindNot:
		b.WriteString("NOT ")
		renderMaybeParen(b, n.Children[0])
	case dt.KindBinary:
		if n.Label == "like" {
			renderMaybeParen(b, n.Children[0])
			b.WriteString(" LIKE ")
			renderMaybeParen(b, n.Children[1])
			return
		}
		renderMaybeParen(b, n.Children[0])
		b.WriteByte(' ')
		b.WriteString(strings.ToUpper(n.Label))
		b.WriteByte(' ')
		renderMaybeParen(b, n.Children[1])
	case dt.KindBetween:
		renderMaybeParen(b, n.Children[0])
		b.WriteString(" BETWEEN ")
		renderMaybeParen(b, n.Children[1])
		b.WriteString(" AND ")
		renderMaybeParen(b, n.Children[2])
	case dt.KindIn:
		renderMaybeParen(b, n.Children[0])
		if n.Label == "not in" {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		if n.Children[1].Kind == dt.KindExprList {
			renderExprList(b, n.Children[1].Children, ", ")
		} else {
			render(b, n.Children[1])
		}
		b.WriteByte(')')
	case dt.KindExprList:
		renderExprList(b, n.Children, ", ")
	case dt.KindFunc:
		b.WriteString(n.Label)
		b.WriteByte('(')
		renderExprList(b, n.Children, ", ")
		b.WriteByte(')')
	case dt.KindIdent:
		b.WriteString(n.Label)
	case dt.KindNumber:
		b.WriteString(n.Label)
	case dt.KindString:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(n.Label, "'", "''"))
		b.WriteByte('\'')
	case dt.KindNone:
		// nothing
	case dt.KindAny:
		b.WriteString("ANY{")
		renderList(b, n.Children, " | ")
		b.WriteByte('}')
	case dt.KindOpt:
		b.WriteString("OPT{")
		render(b, n.Children[0])
		b.WriteByte('}')
	case dt.KindVal:
		b.WriteString("VAL<")
		b.WriteString(n.Label)
		b.WriteByte('>')
	case dt.KindMulti:
		b.WriteString("MULTI{")
		render(b, n.Children[0])
		b.WriteString("}*")
	case dt.KindSubset:
		b.WriteString("SUBSET{")
		renderList(b, n.Children, " , ")
		b.WriteByte('}')
	default:
		b.WriteString("<?" + n.Kind.String() + ">")
	}
}

func renderQuery(b *strings.Builder, n *dt.Node) {
	first := true
	for _, c := range n.Children {
		if c.Kind == dt.KindNone {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		render(b, c)
		first = false
	}
}

// renderFrom renders a FROM child list: table refs are comma-separated,
// join steps attach to the preceding ref with a space instead of a comma
// ("FROM a, b LEFT JOIN c ON ...").
func renderFrom(b *strings.Builder, items []*dt.Node) {
	first := true
	for _, c := range items {
		if c.Kind == dt.KindNone {
			continue
		}
		if !first {
			if c.Kind == dt.KindJoin {
				b.WriteByte(' ')
			} else {
				b.WriteString(", ")
			}
		}
		render(b, c)
		first = false
	}
}

func renderList(b *strings.Builder, items []*dt.Node, sep string) {
	first := true
	for _, c := range items {
		if c.Kind == dt.KindNone {
			continue
		}
		if !first {
			b.WriteString(sep)
		}
		render(b, c)
		first = false
	}
}

// renderBool renders boolean connective children, parenthesizing nested
// connectives of lower precedence.
func renderBool(b *strings.Builder, items []*dt.Node, sep string) {
	for i, c := range items {
		if i > 0 {
			b.WriteString(sep)
		}
		if c.Kind == dt.KindOr || c.Kind == dt.KindAnd || c.Kind == dt.KindQuery {
			b.WriteByte('(')
			render(b, c)
			b.WriteByte(')')
		} else {
			render(b, c)
		}
	}
}

// renderExpr renders an expression in a standalone position (select item,
// WHERE/HAVING body, GROUP BY / ORDER BY key, function argument),
// parenthesizing scalar subqueries so the output re-parses. Without the
// parentheses "SELECT (SELECT max(x) FROM u) FROM t" would render as
// invalid SQL (found by FuzzRoundTrip).
func renderExpr(b *strings.Builder, n *dt.Node) {
	if n != nil && n.Kind == dt.KindQuery {
		b.WriteByte('(')
		render(b, n)
		b.WriteByte(')')
		return
	}
	render(b, n)
}

// renderExprList is renderList for expression positions.
func renderExprList(b *strings.Builder, items []*dt.Node, sep string) {
	first := true
	for _, c := range items {
		if c.Kind == dt.KindNone {
			continue
		}
		if !first {
			b.WriteString(sep)
		}
		renderExpr(b, c)
		first = false
	}
}

// renderMaybeParen renders expression operands, parenthesizing subqueries
// and boolean connectives.
func renderMaybeParen(b *strings.Builder, n *dt.Node) {
	switch n.Kind {
	case dt.KindQuery, dt.KindAnd, dt.KindOr, dt.KindBinary:
		b.WriteByte('(')
		render(b, n)
		b.WriteByte(')')
	default:
		render(b, n)
	}
}
