package sqlparser

import (
	"strings"
	"testing"

	dt "pi2/internal/difftree"
)

func TestParseSimpleGroupBy(t *testing.T) {
	q, err := Parse("SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p")
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != dt.KindQuery || len(q.Children) != 7 {
		t.Fatalf("query shape: %v", q)
	}
	sel := q.Children[0]
	if len(sel.Children) != 2 {
		t.Fatalf("select items = %d, want 2", len(sel.Children))
	}
	if sel.Children[1].Children[0].Kind != dt.KindFunc || sel.Children[1].Children[0].Label != "count" {
		t.Fatalf("second item = %v", sel.Children[1])
	}
	where := q.Children[2]
	if where.Kind != dt.KindWhere {
		t.Fatalf("where = %v", where)
	}
	// WHERE expressions are canonicalized as AND lists
	if where.Children[0].Kind != dt.KindAnd {
		t.Fatalf("where should be AND-wrapped, got %v", where.Children[0].Kind)
	}
	pred := where.Children[0].Children[0]
	if pred.Kind != dt.KindBinary || pred.Label != "=" {
		t.Fatalf("pred = %v", pred)
	}
	if q.Children[3].Kind != dt.KindGroupBy {
		t.Fatalf("groupby = %v", q.Children[3])
	}
}

func TestParseMissingClausesAreNone(t *testing.T) {
	q := MustParse("SELECT a FROM T")
	for i, name := range []string{"select", "from", "where", "groupby", "having", "orderby", "limit"} {
		got := q.Children[i].Kind
		if i < 2 && got == dt.KindNone {
			t.Errorf("%s missing", name)
		}
		if i >= 2 && got != dt.KindNone {
			t.Errorf("%s should be none, got %v", name, got)
		}
	}
}

func TestParseBetweenAndBooleans(t *testing.T) {
	q := MustParse("SELECT hp FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38")
	where := q.Children[2].Children[0]
	if where.Kind != dt.KindAnd || len(where.Children) != 2 {
		t.Fatalf("expected AND of two conjuncts, got %v", where)
	}
	for _, c := range where.Children {
		if c.Kind != dt.KindBetween {
			t.Fatalf("conjunct = %v", c)
		}
	}
}

func TestParseInListWithAlias(t *testing.T) {
	q := MustParse("SELECT mpg, id in (1, 2) as color FROM Cars")
	item := q.Children[0].Children[1]
	if item.Children[1].Label != "color" {
		t.Fatalf("alias = %v", item.Children[1])
	}
	in := item.Children[0]
	if in.Kind != dt.KindIn || in.Label != "in" {
		t.Fatalf("in expr = %v", in)
	}
	if len(in.Children[1].Children) != 2 {
		t.Fatalf("in list = %v", in.Children[1])
	}
}

func TestParseNotIn(t *testing.T) {
	q := MustParse("SELECT a FROM T WHERE a NOT IN (1,2)")
	in := q.Children[2].Children[0].Children[0]
	if in.Kind != dt.KindIn || in.Label != "not in" {
		t.Fatalf("got %v", in)
	}
}

func TestParseSubqueryInFromAndHaving(t *testing.T) {
	sql := `SELECT city, product, sum(total) FROM sales as ss
	        GROUP BY city, product
	        HAVING sum(total) >= (SELECT max(t) FROM
	          (SELECT sum(total) as t FROM sales as s WHERE s.city = ss.city
	           GROUP BY s.city, s.product) AS sub)`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	having := q.Children[4]
	if having.Kind != dt.KindHaving {
		t.Fatalf("having = %v", having)
	}
	cmp := having.Children[0].Children[0]
	if cmp.Label != ">=" {
		t.Fatalf("cmp = %v", cmp)
	}
	if cmp.Children[1].Kind != dt.KindQuery {
		t.Fatalf("rhs should be scalar subquery, got %v", cmp.Children[1].Kind)
	}
	inner := cmp.Children[1]
	ref := inner.Children[1].Children[0]
	if ref.Children[0].Kind != dt.KindQuery {
		t.Fatalf("derived table expected, got %v", ref.Children[0].Kind)
	}
}

func TestParseDateFunctions(t *testing.T) {
	q := MustParse("SELECT date, cases FROM covid WHERE state='CA' and date > date(today(), '-30 days')")
	where := q.Children[2].Children[0]
	if where.Kind != dt.KindAnd {
		t.Fatalf("where = %v", where)
	}
	cmp := where.Children[1]
	fn := cmp.Children[1]
	if fn.Kind != dt.KindFunc || fn.Label != "date" || len(fn.Children) != 2 {
		t.Fatalf("date fn = %v", fn)
	}
	if fn.Children[0].Label != "today" {
		t.Fatalf("inner fn = %v", fn.Children[0])
	}
	if fn.Children[1].Kind != dt.KindString {
		t.Fatalf("offset arg = %v", fn.Children[1])
	}
}

func TestParseDistinctJoinQualified(t *testing.T) {
	q := MustParse(`SELECT DISTINCT gal.objID, s.ra FROM galaxy as gal, specObj as s
	                WHERE s.bestObjID = gal.objID AND s.ra BETWEEN 213.3 AND 214.1`)
	if q.Children[0].Label != "distinct" {
		t.Fatal("distinct flag lost")
	}
	if len(q.Children[1].Children) != 2 {
		t.Fatalf("from refs = %v", q.Children[1])
	}
	first := q.Children[0].Children[0].Children[0]
	if first.Kind != dt.KindIdent || first.Label != "gal.objID" {
		t.Fatalf("qualified ident = %v", first)
	}
}

func TestParseOrderByLimitDesc(t *testing.T) {
	q := MustParse("SELECT a FROM T ORDER BY a DESC, b LIMIT 10")
	ob := q.Children[5]
	if len(ob.Children) != 2 {
		t.Fatalf("order items = %v", ob)
	}
	if ob.Children[0].Label != "desc" || ob.Children[1].Label != "asc" {
		t.Fatalf("directions = %q %q", ob.Children[0].Label, ob.Children[1].Label)
	}
	if q.Children[6].Label != "10" {
		t.Fatalf("limit = %v", q.Children[6])
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	q := MustParse("SELECT a + b * 2 FROM T")
	e := q.Children[0].Children[0].Children[0]
	if e.Label != "+" {
		t.Fatalf("root op = %q", e.Label)
	}
	if e.Children[1].Label != "*" {
		t.Fatalf("rhs op = %q, want *", e.Children[1].Label)
	}
}

func TestParseNegativeNumbersAndDecimals(t *testing.T) {
	q := MustParse("SELECT a FROM T WHERE dec BETWEEN -0.9 AND -0.2")
	bet := q.Children[2].Children[0].Children[0]
	if bet.Children[1].Label != "-0.9" || bet.Children[2].Label != "-0.2" {
		t.Fatalf("bounds = %v %v", bet.Children[1], bet.Children[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM T WHERE",
		"SELECT a FROM T WHERE a ==",
		"SELECT a FROM T GROUP a",
		"SELECT a FROM T WHERE a BETWEEN 1",
		"SELECT a FROM T WHERE a IN (",
		"SELECT a FROM T LIMIT x",
		"SELECT a FROM T trailing garbage (",
		"SELECT 'unterminated FROM T",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestRoundTripThroughToSQL(t *testing.T) {
	queries := []string{
		"SELECT p, count(*) FROM T WHERE a = 1 GROUP BY p",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT date, price FROM sp500 WHERE date > '2001-01-01' AND date < '2003-01-01'",
		"SELECT mpg, disp, id IN (1, 2) AS color FROM Cars",
		"SELECT hour, count(*) FROM flights WHERE delay BETWEEN 0 AND 50 GROUP BY hour",
		"SELECT DISTINCT ra, dec FROM specObj WHERE ra BETWEEN 213.2 AND 213.6",
		"SELECT a FROM T WHERE b = 'x''y'",
		"SELECT a FROM T WHERE NOT (a = 1 OR b = 2)",
		"SELECT date, sum(total) FROM sales WHERE branch = 'A' AND product = 'Health and beauty' GROUP BY date",
		"SELECT a FROM T ORDER BY a DESC LIMIT 5",
	}
	for _, sql := range queries {
		ast1, err := Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		rendered := ToSQL(ast1)
		ast2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse %q (rendered from %q): %v", rendered, sql, err)
		}
		if !dt.Equal(ast1, ast2) {
			t.Fatalf("round trip changed tree:\n  sql: %s\n  rendered: %s\n  a: %v\n  b: %v", sql, rendered, ast1, ast2)
		}
	}
}

func TestToSQLChoiceNodesReadable(t *testing.T) {
	anyN := dt.New(dt.KindAny, "",
		dt.New(dt.KindBinary, "=", dt.Ident("a"), dt.Number("1")),
		dt.New(dt.KindBinary, "=", dt.Ident("b"), dt.Number("2")))
	s := ToSQL(anyN)
	if !strings.Contains(s, "ANY{") || !strings.Contains(s, "a = 1") {
		t.Fatalf("choice rendering = %q", s)
	}
	val := dt.New(dt.KindVal, "num", dt.Number("1"))
	if ToSQL(val) != "VAL<num>" {
		t.Fatalf("VAL rendering = %q", ToSQL(val))
	}
}

func TestParseAllReportsIndex(t *testing.T) {
	_, err := ParseAll([]string{"SELECT a FROM T", "SELECT FROM"})
	if err == nil || !strings.Contains(err.Error(), "query 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	a := MustParse("select A from T where A = 1")
	b := MustParse("SELECT A FROM T WHERE A = 1")
	if !dt.Equal(a, b) {
		t.Fatal("keyword case changed parse result")
	}
}

func TestLineComments(t *testing.T) {
	q := MustParse("SELECT a -- project a\nFROM T -- the table\n")
	if len(q.Children[0].Children) != 1 {
		t.Fatalf("parse with comments: %v", q)
	}
}

func TestParseJoinShapes(t *testing.T) {
	q := MustParse("SELECT * FROM a, b LEFT JOIN c ON b.x = c.x AND c.y > 2, d")
	from := q.Children[1]
	if from.Kind != dt.KindFrom || len(from.Children) != 4 {
		t.Fatalf("from shape: %v", from)
	}
	kinds := []dt.Kind{dt.KindTableRef, dt.KindTableRef, dt.KindJoin, dt.KindTableRef}
	for i, k := range kinds {
		if from.Children[i].Kind != k {
			t.Fatalf("from child %d = %v, want %v", i, from.Children[i].Kind, k)
		}
	}
	join := from.Children[2]
	if join.Label != "left" {
		t.Fatalf("join label = %q, want left", join.Label)
	}
	if join.Children[0].Kind != dt.KindTableRef {
		t.Fatalf("join ref = %v", join.Children[0])
	}
	// ON is AND-wrapped like WHERE and HAVING
	if on := join.Children[1]; on.Kind != dt.KindAnd || len(on.Children) != 2 {
		t.Fatalf("join on = %v", join.Children[1])
	}
}

func TestParseJoinSpellingsCanonical(t *testing.T) {
	// Bare JOIN and INNER JOIN, and the optional OUTER keyword, produce
	// structurally equal trees.
	pairs := [][2]string{
		{"SELECT * FROM t JOIN u ON t.a = u.a", "SELECT * FROM t INNER JOIN u ON t.a = u.a"},
		{"SELECT * FROM t LEFT JOIN u ON t.a = u.a", "SELECT * FROM t LEFT OUTER JOIN u ON t.a = u.a"},
		{"SELECT * FROM t RIGHT JOIN u ON t.a = u.a", "SELECT * FROM t RIGHT OUTER JOIN u ON t.a = u.a"},
		{"SELECT * FROM t FULL JOIN u ON t.a = u.a", "SELECT * FROM t FULL OUTER JOIN u ON t.a = u.a"},
	}
	for _, p := range pairs {
		a, b := MustParse(p[0]), MustParse(p[1])
		if !dt.Equal(a, b) {
			t.Errorf("%q and %q parse differently:\n  %s\n  %s", p[0], p[1], a, b)
		}
	}
}

func TestJoinRoundTrip(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t JOIN u ON t.a = u.a",
		"SELECT * FROM t INNER JOIN u ON t.a = u.a AND u.b > 3",
		"SELECT t.a, u.b FROM t LEFT JOIN u ON t.a = u.a WHERE u.b <> 4",
		"SELECT t.a FROM t LEFT OUTER JOIN u ON t.a = u.a OR t.b < u.b",
		"SELECT e.id FROM emp AS e RIGHT JOIN dept AS d ON e.dept = d.name ORDER BY e.id",
		"SELECT * FROM a, b FULL OUTER JOIN c ON b.x = c.x LEFT JOIN d ON c.y = d.y, e",
		"SELECT * FROM t FULL JOIN (SELECT a FROM u) AS sub ON t.a = sub.a LIMIT 2",
	} {
		ast1 := MustParse(sql)
		rendered := ToSQL(ast1)
		ast2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", rendered, sql, err)
		}
		if !dt.Equal(ast1, ast2) {
			t.Fatalf("join round trip changed tree:\n  sql: %s\n  rendered: %s", sql, rendered)
		}
	}
}

func TestParseJoinErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT * FROM t JOIN u",               // missing ON
		"SELECT * FROM t LEFT JOIN u ON",       // missing ON expression
		"SELECT * FROM t LEFT JOIN ON t.a = 1", // missing table
		"SELECT * FROM t OUTER JOIN u ON 1 = 1",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}
