// Package sqlparser lexes and parses the SQL analysis subset used by PI2
// into difftree nodes, and renders trees back to SQL text. The grammar
// covers the full query surface of the paper's seven workloads: projections
// with expressions and aliases, DISTINCT, joins and derived tables, WHERE
// with boolean logic / BETWEEN / IN / LIKE, GROUP BY, HAVING with correlated
// scalar subqueries, ORDER BY, and LIMIT.
package sqlparser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokSymbol
)

type token struct {
	kind tokenKind
	text string // keywords lowercased; strings unquoted
	pos  int
}

var keywords = map[string]bool{
	"select": true, "distinct": true, "from": true, "where": true,
	"group": true, "by": true, "having": true, "order": true, "limit": true,
	"and": true, "or": true, "not": true, "between": true, "in": true,
	"like": true, "as": true, "asc": true, "desc": true,
	"join": true, "on": true, "inner": true, "left": true, "right": true,
	"full": true, "outer": true,
}

// lex tokenizes the input. It is deliberately forgiving about whitespace and
// accepts both '<>' and '!=' for inequality.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(input[j])) || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					// a dot not followed by a digit terminates the number
					if j+1 >= n || !unicode.IsDigit(rune(input[j+1])) {
						break
					}
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(c):
			j := i
			for j < n && isIdentPart(input[j]) {
				j++
			}
			word := input[i:j]
			lower := strings.ToLower(word)
			if keywords[lower] {
				toks = append(toks, token{tokKeyword, lower, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < n {
				if input[j] == quote {
					if j+1 < n && input[j+1] == quote { // escaped quote
						sb.WriteByte(quote)
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlparser: unterminated string at offset %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		default:
			// multi-char symbols first
			if i+1 < n {
				two := input[i : i+2]
				switch two {
				case "<>", "!=", "<=", ">=":
					if two == "!=" {
						two = "<>"
					}
					toks = append(toks, token{tokSymbol, two, i})
					i += 2
					continue
				}
			}
			switch c {
			case '(', ')', ',', '.', '=', '<', '>', '+', '-', '*', '/':
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("sqlparser: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}
