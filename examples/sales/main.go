// Sales: the paper's complex dashboard (Listing 7, Figure 15c). The query
// log contains correlated HAVING subqueries that Metabase and Tableau cannot
// parameterize; PI2 turns them into a brush-linked dashboard.
package main

import (
	"fmt"
	"log"

	"pi2"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	db := dataset.NewDB()
	gen := pi2.NewGenerator(db, dataset.Keys())
	wl := workload.Sales()

	res, err := gen.Generate(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	// The brush on the date/sum(total) chart rewrites the HAVING tree's
	// date range: exactly the paper's "brushing it updates the bar chart".
	for _, v := range res.Interface.VisInts {
		if v.Kind != "brush-x" {
			continue
		}
		src := res.Interface.Vis[v.SourceVis].ElemID
		before, _ := sess.CurrentSQL(v.Tree)
		if err := sess.Brush(src, "brush-x", "2019-02-01", "2019-02-20"); err != nil {
			log.Printf("brush: %v", err)
			continue
		}
		after, _ := sess.CurrentSQL(v.Tree)
		fmt.Printf("\nbrushed %s to [2019-02-01, 2019-02-20]; tree %d query:\n", src, v.Tree)
		fmt.Println("  before:", before)
		fmt.Println("  after: ", after)
		r, err := sess.Result(v.Tree)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-sales chart now renders %d rows\n", len(r.Rows))
		break
	}
}
