// Quickstart: generate an interactive interface from two example queries
// (the paper's Figure 1 scenario: two range-filtered scatterplot queries),
// then drive it programmatically through the interaction runtime.
package main

import (
	"fmt"
	"log"

	"pi2"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

func main() {
	// 1. A database and its catalogue (any engine.DB works; the bundled
	// datasets mirror the paper's).
	db := dataset.NewDB()
	gen := pi2.NewGenerator(db, dataset.Keys())

	// 2. Example analysis queries: the same scatterplot with two different
	// range predicates.
	queries := []string{
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30",
	}

	// 3. Generate the interface.
	res, err := gen.Generate(queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated interface:")
	fmt.Print(iface.RenderText(res.Interface))

	// 4. Drive it: a session binds each chart to its first query; panning
	// the scatterplot rewrites the range predicates and re-executes.
	asts, err := sqlparser.ParseAll(queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	sql, _ := sess.CurrentSQL(0)
	fmt.Println("\ninitial query:", sql)
	r0, _ := sess.Result(0)
	fmt.Printf("initial rows: %d\n", len(r0.Rows))

	// pan the viewport to hp ∈ [100, 150], mpg ∈ [10, 25]
	chart := res.Interface.Vis[0].ElemID
	if err := sess.Brush(chart, "pan", "100", "150", "10", "25"); err != nil {
		log.Fatal(err)
	}
	sql, _ = sess.CurrentSQL(0)
	fmt.Println("\nafter panning:", sql)
	r1, _ := sess.Result(0)
	fmt.Printf("rows now: %d\n", len(r1.Rows))
}
