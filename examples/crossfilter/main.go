// Crossfilter: the paper's Filter workload (Listing 4, Figure 14d). PI2
// derives cross-filtering from first principles: three grouped charts whose
// brushes rewrite the *other* charts' predicates; clearing a brush disables
// the predicate.
package main

import (
	"fmt"
	"log"

	"pi2"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/workload"
)

func main() {
	db := dataset.NewDB()
	gen := pi2.NewGenerator(db, dataset.Keys())
	wl := workload.Filter()

	res, err := gen.Generate(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	// Find a cross-tree brush: brushing this chart rewrites another tree.
	var src string
	var kind string
	var target int
	for _, v := range res.Interface.VisInts {
		if v.Kind == "brush-x" && v.Tree != res.Interface.Vis[v.SourceVis].Tree {
			src = res.Interface.Vis[v.SourceVis].ElemID
			kind = string(v.Kind)
			target = v.Tree
			break
		}
	}
	if src == "" {
		log.Fatal("no cross-tree brush mapped")
	}

	before, _ := sess.CurrentSQL(target)
	fmt.Println("\ntarget chart query before brushing:")
	fmt.Println(" ", before)

	if err := sess.Brush(src, kind, "20", "45"); err != nil {
		log.Fatal(err)
	}
	after, _ := sess.CurrentSQL(target)
	fmt.Printf("\nafter brushing %s to [20, 45]:\n  %s\n", src, after)
	r, err := sess.Result(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target chart now renders %d groups\n", len(r.Rows))

	// clearing the brush disables the predicate (paper §7.1)
	if err := sess.ClearBrush(src, kind); err != nil {
		log.Fatal(err)
	}
	cleared, _ := sess.CurrentSQL(target)
	fmt.Printf("\nafter clearing the brush:\n  %s\n", cleared)
}
