# Exploration log over examples/data/penguins.csv + islands.csv — datasets
# that do not exist in internal/dataset, proving generation works on
# ingested files, including an outer join across them:
#
#   pi2gen -data examples/data/penguins.csv,examples/data/islands.csv \
#          -queries examples/data/penguins.sql \
#          -manifest examples/data/penguins.json
SELECT bill_len, body_mass FROM penguins WHERE bill_len BETWEEN 35 AND 46 AND body_mass BETWEEN 3000 AND 4200
SELECT bill_len, body_mass FROM penguins WHERE bill_len BETWEEN 43 AND 53 AND body_mass BETWEEN 3400 AND 5900
SELECT p.body_mass, i.area FROM penguins AS p LEFT JOIN islands AS i ON p.island = i.island WHERE p.body_mass BETWEEN 3000 AND 5000
