# Exploration log over examples/data/penguins.csv — a dataset that does not
# exist in internal/dataset, proving generation works on ingested files:
#
#   pi2gen -data examples/data/penguins.csv -queries examples/data/penguins.sql \
#          -manifest examples/data/penguins.json
SELECT bill_len, body_mass FROM penguins WHERE bill_len BETWEEN 35 AND 46 AND body_mass BETWEEN 3000 AND 4200
SELECT bill_len, body_mass FROM penguins WHERE bill_len BETWEEN 43 AND 53 AND body_mass BETWEEN 3400 AND 5900
