-- Covid case-study query log (Figure 15b) over examples/data/covid.csv;
-- statements here are ;-separated to show the other log format. Run with:
--
--   pi2serve -data examples/data/covid.csv -queries examples/data/covid.sql
SELECT date, cases FROM covid WHERE state = 'CA';
SELECT date, cases FROM covid WHERE state = 'WA' AND date > date(today(), '-30 days');
SELECT date, cases FROM covid WHERE state = 'CA' AND date > date(today(), '-7 days');
SELECT date, deaths FROM covid WHERE state = 'CA';
SELECT date, deaths FROM covid WHERE state = 'NY';
SELECT date, deaths FROM covid WHERE state = 'WA' AND date > date(today(), '-14 days');
SELECT date, deaths FROM covid WHERE state = 'WA' AND date > date(today(), '-7 days');
SELECT date, deaths FROM covid WHERE state = 'NY' AND date > date(today(), '-7 days')
