# Explore-style query log over examples/data/cars.csv (Listing 1 of the
# paper): two scatterplot range probes. Run with:
#
#   pi2gen -data examples/data/cars.csv -queries examples/data/explore.sql
SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38
SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30
