// Command export regenerates the CSV exports under examples/data/ from the
// built-in synthetic datasets, so the bring-your-own-data examples (and the
// golden round-trip test) stay in lockstep with internal/dataset:
//
//	go run ./examples/data/export [dir]
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"strings"

	"pi2/internal/dataset"
	"pi2/internal/engine"
	"pi2/internal/ingest"
)

func main() {
	dir := "examples/data"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	for _, t := range []*engine.Table{dataset.Cars(), dataset.Covid()} {
		path := filepath.Join(dir, strings.ToLower(t.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		if err := ingest.WriteCSV(f, t); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "export:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, len(t.Rows))
	}
}
