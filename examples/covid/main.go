// Covid: reproduces Google's Covid-19 dashboard from example queries
// (Listing 6, Figure 15b): widgets choose the reported metric, state filter,
// and date interval — with the interval control nested under a toggle.
package main

import (
	"fmt"
	"log"

	"pi2"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/widget"
	"pi2/internal/workload"
)

func main() {
	db := dataset.NewDB()
	gen := pi2.NewGenerator(db, dataset.Keys())
	wl := workload.Covid()

	res, err := gen.Generate(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	// Walk the widgets: flip every enumerating widget to its next option
	// and watch the bound query change.
	for _, w := range res.Interface.Widgets {
		before, _ := sess.CurrentSQL(w.Tree)
		switch w.Kind {
		case widget.Radio, widget.Dropdown, widget.Button:
			if len(w.Options) < 2 {
				continue
			}
			if err := sess.SetOption(w.ElemID, 1); err != nil {
				log.Printf("%s: %v", w.ElemID, err)
				continue
			}
		case widget.Toggle:
			if err := sess.SetToggle(w.ElemID, true); err != nil {
				log.Printf("%s: %v", w.ElemID, err)
				continue
			}
		default:
			continue
		}
		after, _ := sess.CurrentSQL(w.Tree)
		if before != after {
			fmt.Printf("\n%s %s (%q):\n  %s\n→ %s\n", w.Kind, w.ElemID, w.Label, before, after)
		}
	}

	rows, err := sess.Results()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i, r := range rows {
		fmt.Printf("chart %d renders %d rows\n", i, len(r.Rows))
	}
}
