// SDSS: the Sloan Digital Sky Survey case study (Listing 5, Figure 15a).
// PI2 turns the SkyServer's text-form search into a visual interface: a sky
// scatterplot of (ra, dec) whose panning updates the joined star table.
package main

import (
	"fmt"
	"log"

	"pi2"
	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
	"pi2/internal/vis"
	"pi2/internal/workload"
)

func main() {
	db := dataset.NewDB()
	gen := pi2.NewGenerator(db, dataset.Keys())
	wl := workload.SDSS()

	res, err := gen.Generate(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(iface.RenderText(res.Interface))

	asts, err := sqlparser.ParseAll(wl.Queries)
	if err != nil {
		log.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(res.Interface, ctx, db)
	if err != nil {
		log.Fatal(err)
	}

	// find the sky scatterplot and the table tree
	var scatter string
	tableTree := -1
	for _, v := range res.Interface.Vis {
		if v.Mapping.Vis.Type == vis.Point {
			scatter = v.ElemID
		}
		if v.Mapping.Vis.Type == vis.Table {
			tableTree = v.Tree
		}
	}
	if scatter == "" || tableTree < 0 {
		log.Fatal("expected a scatterplot and a table")
	}

	before, err := sess.Result(tableTree)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntable initially lists %d stars\n", len(before.Rows))

	// pan the sky view to a different celestial window
	for _, v := range res.Interface.VisInts {
		if v.Kind == "pan" && v.Tree == tableTree {
			if err := sess.Brush(scatter, "pan", "213.1", "213.5", "-0.6", "-0.25"); err != nil {
				log.Fatal(err)
			}
			break
		}
	}
	after, err := sess.Result(tableTree)
	if err != nil {
		log.Fatal(err)
	}
	sql, _ := sess.CurrentSQL(tableTree)
	fmt.Printf("after panning to ra∈[213.1,213.5], dec∈[-0.6,-0.25]: %d stars\n", len(after.Rows))
	fmt.Println("table query:", sql)
}
