package pi2

import (
	"testing"

	"pi2/internal/dataset"
	"pi2/internal/iface"
	"pi2/internal/sqlparser"
	"pi2/internal/transform"
)

func TestGeneratorEndToEnd(t *testing.T) {
	db := dataset.NewDB()
	gen := NewGenerator(db, dataset.Keys()).WithSeed(7)
	gen.Config.Search.Workers = 1
	gen.Config.Search.MaxIterations = 60

	queries := []string{
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 50 AND 60 AND mpg BETWEEN 27 AND 38",
		"SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30",
	}
	res, err := gen.Generate(queries)
	if err != nil {
		t.Fatal(err)
	}
	ifc := res.Interface
	if len(ifc.Vis) != 1 {
		t.Fatalf("charts = %d, want 1", len(ifc.Vis))
	}
	if ifc.InteractionCount() == 0 {
		t.Fatal("no interactions generated")
	}

	// the generated interface must express both input queries through its
	// runtime: pan to each query's ranges and compare against direct
	// execution.
	asts, err := sqlparser.ParseAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &transform.Context{Queries: asts, Cat: gen.Cat}
	sess, err := iface.NewSession(ifc, ctx, db)
	if err != nil {
		t.Fatal(err)
	}
	chart := ifc.Vis[0].ElemID
	if err := sess.Brush(chart, "pan", "60", "90", "16", "30"); err != nil {
		t.Fatal(err)
	}
	sql, err := sess.CurrentSQL(0)
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT hp, mpg, origin FROM Cars WHERE hp BETWEEN 60 AND 90 AND mpg BETWEEN 16 AND 30"
	if sql != want {
		t.Fatalf("panned query = %q, want %q", sql, want)
	}
}

func TestGeneratorParseError(t *testing.T) {
	gen := NewGenerator(dataset.NewDB(), dataset.Keys())
	if _, err := gen.Generate([]string{"SELEC nonsense"}); err == nil {
		t.Fatal("expected parse error")
	}
}
