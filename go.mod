module pi2

go 1.22
