// Package pi2 is the public facade of this PI2 reproduction (Chen & Wu,
// SIGMOD 2022): end-to-end generation of interactive multi-visualization
// interfaces from example SQL analysis queries.
//
// Quickstart:
//
//	db := dataset.NewDB()                       // or build your own engine.DB
//	gen := pi2.NewGenerator(db, dataset.Keys())
//	res, err := gen.Generate([]string{
//	    "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 50 AND 60",
//	    "SELECT hp, mpg FROM Cars WHERE hp BETWEEN 60 AND 90",
//	})
//	fmt.Println(iface.RenderText(res.Interface))
//
// The generator is database agnostic: it needs only the SQL grammar (built
// in), a query-execution connection (engine.DB) and the database catalogue,
// exactly as the paper prescribes.
package pi2

import (
	"pi2/internal/catalog"
	"pi2/internal/core"
	"pi2/internal/engine"
	"pi2/internal/ingest"
)

// Generator generates interfaces against one database.
type Generator struct {
	DB     *engine.DB
	Cat    *catalog.Catalog
	Config core.Config
}

// NewGenerator builds a generator with the paper's default parameters. keys
// maps table names to primary-key column lists for functional-dependency
// inference (may be nil).
func NewGenerator(db *engine.DB, keys map[string][]string) *Generator {
	return &Generator{
		DB:     db,
		Cat:    catalog.Build(db, keys),
		Config: core.DefaultConfig(),
	}
}

// GeneratorFromFiles builds a generator from external files: tabular data
// (CSV/TSV/NDJSON, optionally gzipped) becomes the database, the query-log
// file supplies the example queries (returned ready for Generate), and the
// optional manifest declares table names, keys and type overrides. Every
// statement is validated against the ingested catalogue before anything
// runs, so errors carry file:line positions.
//
//	gen, queries, err := pi2.GeneratorFromFiles(
//	    []string{"cars.csv"}, "explore.sql", "")
//	res, err := gen.Generate(queries)
func GeneratorFromFiles(dataPaths []string, queryLogPath, manifestPath string) (*Generator, []string, error) {
	loaded, stmts, err := ingest.LoadAll(dataPaths, queryLogPath, manifestPath)
	if err != nil {
		return nil, nil, err
	}
	return NewGenerator(loaded.DB, loaded.Keys), ingest.SQLs(stmts), nil
}

// Generate runs the full pipeline on a SQL query log.
func (g *Generator) Generate(sqls []string) (*core.Result, error) {
	return core.Generate(sqls, g.DB, g.Cat, g.Config)
}

// WithSeed returns the generator with a different random seed (search is
// deterministic for a fixed seed and worker count).
func (g *Generator) WithSeed(seed int64) *Generator {
	g.Config.Search.Seed = seed
	return g
}
